package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: agentring/internal/sim
BenchmarkSteadyState/n=1000/k=100-8         	     100	    912345 ns/op	       456.2 ns/step	      2000 steps/op	       0 B/op	       0 allocs/op
BenchmarkSteadyState/n=10000/k=100-8        	      10	   9123450 ns/op	       450.0 ns/step	     20200 steps/op	       0 B/op	       0 allocs/op
BenchmarkSteadyState/n=1000/k=100-8         	     100	    912345 ns/op	       460.2 ns/step	      2000 steps/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	benches, err := ParseBenchOutput(sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benches, want 2: %+v", len(benches), benches)
	}
	b := benches[0]
	if b.Name != "BenchmarkSteadyState/n=1000/k=100" {
		t.Fatalf("name = %q (procs suffix not stripped?)", b.Name)
	}
	// Two -count repetitions averaged: (456.2+460.2)/2.
	if got := b.Metrics["ns/step"]; got < 458.1 || got > 458.3 {
		t.Fatalf("ns/step = %v, want ~458.2", got)
	}
	if _, ok := b.Metrics["ns/op"]; !ok {
		t.Fatal("ns/op metric missing")
	}
}

func writeJSONFile(t *testing.T, dir, name string, benches []Bench) string {
	t.Helper()
	data, err := json.Marshal(benches)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeJSONFile(t, dir, "base.json", []Bench{
		{Name: "B/a", Metrics: map[string]float64{"ns/step": 100}},
		{Name: "B/b", Metrics: map[string]float64{"ns/step": 100}},
	})
	cur := writeJSONFile(t, dir, "cur.json", []Bench{
		{Name: "B/a", Metrics: map[string]float64{"ns/step": 120}},
		{Name: "B/b", Metrics: map[string]float64{"ns/step": 60}},
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("20%% regression under the 25%% default must pass: %v\n%s", err, out.String())
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeJSONFile(t, dir, "base.json", []Bench{
		{Name: "B/a", Metrics: map[string]float64{"ns/step": 100}},
	})
	cur := writeJSONFile(t, dir, "cur.json", []Bench{
		{Name: "B/a", Metrics: map[string]float64{"ns/step": 130}},
	})
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("err = %v, want a regression failure", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("table lacks REGRESSION marker:\n%s", out.String())
	}
}

func TestCompareFailsOnGrowthFromZeroBaseline(t *testing.T) {
	dir := t.TempDir()
	base := writeJSONFile(t, dir, "base.json", []Bench{
		{Name: "B/a", Metrics: map[string]float64{"allocs/op": 0}},
	})
	cur := writeJSONFile(t, dir, "cur.json", []Bench{
		{Name: "B/a", Metrics: map[string]float64{"allocs/op": 1402}},
	})
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur, "-metric", "allocs/op"}, &out)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("growth from a zero baseline must fail: err = %v\n%s", err, out.String())
	}
}

func TestCompareHigherIsBetterMetrics(t *testing.T) {
	dir := t.TempDir()
	base := writeJSONFile(t, dir, "base.json", []Bench{
		{Name: "B/a", Metrics: map[string]float64{"speedup": 4.0}},
		{Name: "B/b", Metrics: map[string]float64{"speedup": 4.0}},
	})
	cur := writeJSONFile(t, dir, "cur.json", []Bench{
		// A rate metric collapsing is the regression; one rising far
		// past the threshold is just an improvement.
		{Name: "B/a", Metrics: map[string]float64{"speedup": 1.1}},
		{Name: "B/b", Metrics: map[string]float64{"speedup": 9.0}},
	})
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur, "-metric", "speedup"}, &out)
	if err == nil || !strings.Contains(err.Error(), "B/a") {
		t.Fatalf("collapsed speedup must fail the gate: err = %v\n%s", err, out.String())
	}
	if strings.Contains(err.Error(), "B/b") {
		t.Fatalf("improved speedup wrongly flagged: %v", err)
	}
}

func TestCompareFailsOnMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	base := writeJSONFile(t, dir, "base.json", []Bench{
		{Name: "B/gone", Metrics: map[string]float64{"ns/step": 100}},
	})
	cur := writeJSONFile(t, dir, "cur.json", []Bench{
		{Name: "B/new", Metrics: map[string]float64{"ns/step": 100}},
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatal("vanished baseline benchmark must fail the comparison")
	}
}

func TestCompareGatesAllDefaultMetrics(t *testing.T) {
	dir := t.TempDir()
	base := writeJSONFile(t, dir, "base.json", []Bench{
		{Name: "B/a", Metrics: map[string]float64{"ns/step": 100, "B/op": 1000, "bytes/node": 50}},
	})
	cur := writeJSONFile(t, dir, "cur.json", []Bench{
		// ns/step improves, but bytes/node blows past the threshold: the
		// multi-metric gate must still fail.
		{Name: "B/a", Metrics: map[string]float64{"ns/step": 50, "B/op": 1000, "bytes/node": 90}},
	})
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err == nil || !strings.Contains(err.Error(), "bytes/node") {
		t.Fatalf("bytes/node regression must fail the default gate: err = %v\n%s", err, out.String())
	}
	// Every gated metric present in the baseline gets a table row.
	for _, metric := range []string{"ns/step", "B/op", "bytes/node"} {
		if !strings.Contains(out.String(), metric) {
			t.Errorf("table lacks a %s row:\n%s", metric, out.String())
		}
	}
}

func TestCompareFailsOnDroppedMetric(t *testing.T) {
	dir := t.TempDir()
	base := writeJSONFile(t, dir, "base.json", []Bench{
		{Name: "B/a", Metrics: map[string]float64{"ns/step": 100, "bytes/node": 50}},
	})
	cur := writeJSONFile(t, dir, "cur.json", []Bench{
		{Name: "B/a", Metrics: map[string]float64{"ns/step": 100}},
	})
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err == nil || !strings.Contains(err.Error(), "lacks metric bytes/node") {
		t.Fatalf("a dropped baseline metric must fail: err = %v\n%s", err, out.String())
	}
}

func TestParseModeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(raw, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-parse", raw}, &out); err != nil {
		t.Fatal(err)
	}
	var benches []Bench
	if err := json.Unmarshal(out.Bytes(), &benches); err != nil {
		t.Fatalf("parse output is not JSON: %v\n%s", err, out.String())
	}
	if len(benches) != 2 {
		t.Fatalf("round-trip lost benches: %+v", benches)
	}
}

func TestParseModeNoBenches(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(raw, []byte("PASS\nok\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-parse", raw}, &out); err == nil {
		t.Fatal("empty bench output must error")
	}
}

func TestNoModeFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing mode flags must error")
	}
}
