// Command agentring is the client CLI for agentringd (the resident
// simulation daemon): it submits run/sweep/explore jobs over the
// JSON-RPC Unix socket, watches their progress and live trace events,
// and fetches results.
//
// Usage:
//
//	agentring submit -kind sweep -alg native -ns 64,128 -ks 4,8   # enqueue a sweep
//	agentring submit -kind run -alg logspace -n 64 -k 8 -wait     # run and block for the result
//	agentring submit -local -kind sweep -alg native -ns 64 -ks 4  # same spec, no daemon (jobs.Execute)
//	agentring status j1                                           # one job's snapshot
//	agentring list                                                # every job
//	agentring result -json j1                                     # result payload (raw daemon bytes)
//	agentring watch j1                                            # stream progress + trace events
//	agentring cancel j1                                           # cancel queued/running
//	agentring daemon-status                                       # daemon identity + engine census
//	agentring drain                                               # graceful daemon shutdown
//
// Every subcommand takes -socket (default agentringd's default) and
// -json for machine-readable output. `submit -local -json` and
// `result -json` print the identical byte stream for the same spec —
// the equivalence the CI daemon smoke test pins down.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"agentring/internal/jobs"
	"agentring/internal/rpc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "agentring:", err)
		os.Exit(1)
	}
}

const usage = `usage: agentring <command> [flags] [args]

commands:
  submit         enqueue a job (or run it locally with -local)
  status <id>    one job's snapshot
  list           every job's snapshot
  result <id>    a done job's payload
  cancel <id>    cancel a queued or running job
  watch [id]     stream job and trace events (all jobs if no id)
  daemon-status  daemon identity, protocol and engine census
  drain          ask the daemon to drain and exit

every command takes -socket and -json; see 'agentring <command> -h'.`

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		fmt.Fprintln(out, usage)
		return errors.New("missing command")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "submit":
		return cmdSubmit(rest, out)
	case "status":
		return cmdStatus(rest, out)
	case "list":
		return cmdList(rest, out)
	case "result":
		return cmdResult(rest, out)
	case "cancel":
		return cmdCancel(rest, out)
	case "watch":
		return cmdWatch(rest, out)
	case "daemon-status":
		return cmdDaemonStatus(rest, out)
	case "drain":
		return cmdDrain(rest, out)
	case "help", "-h", "-help", "--help":
		fmt.Fprintln(out, usage)
		return nil
	default:
		return fmt.Errorf("unknown command %q (try 'agentring help')", cmd)
	}
}

// common is the flag pair every subcommand shares.
func common(fs *flag.FlagSet) (socket *string, jsonOut *bool) {
	socket = fs.String("socket", rpc.DefaultSocket(), "daemon unix socket path")
	jsonOut = fs.Bool("json", false, "machine-readable JSON output")
	return
}

// dial connects and verifies the daemon speaks our protocol revision,
// so a version skew fails with a clear message instead of a confusing
// method or shape mismatch later.
func dial(socket string) (*rpc.Client, error) {
	cl, err := rpc.Dial(socket)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w (is agentringd running?)", socket, err)
	}
	st, err := cl.DaemonStatus()
	if err != nil {
		cl.Close()
		return nil, fmt.Errorf("daemon handshake: %w", err)
	}
	if st.Protocol != rpc.ProtocolVersion {
		cl.Close()
		return nil, fmt.Errorf("daemon %s speaks protocol %d, this client protocol %d", st.Version, st.Protocol, rpc.ProtocolVersion)
	}
	return cl, nil
}

func cmdSubmit(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	socket, jsonOut := common(fs)
	var (
		kind     = fs.String("kind", "run", "job kind: run | sweep | explore")
		alg      = fs.String("alg", "", "algorithm: native | native-n | logspace | relaxed | naive | firstfit | binative")
		n        = fs.Int("n", 0, "ring size (run/explore; sweep default axis)")
		k        = fs.Int("k", 0, "agent count (run/explore; sweep default axis)")
		ns       = fs.String("ns", "", "sweep n axis, comma-separated (e.g. 64,128,256)")
		ks       = fs.String("ks", "", "sweep k axis, comma-separated")
		homes    = fs.String("homes", "", "explicit home nodes, comma-separated (run/explore only)")
		workload = fs.String("workload", "", "placement generator: random | clustered | uniform | periodic")
		degree   = fs.Int("degree", 0, "symmetry degree for the periodic workload")
		seed     = fs.Int64("seed", 1, "base seed")
		sched    = fs.String("scheduler", "", "roundrobin | random | synchronous | adversarial")
		topo     = fs.String("topology", "", "substrate spec (agentring.ParseTopology); empty = unidirectional ring")
		faults   = fs.String("faults", "", "fault plan spec (agentring.ParseFaults)")
		priority = fs.Int("priority", 0, "queue priority (higher runs earlier)")
		traceEv  = fs.Int("trace-events", 0, "stream up to this many live trace events to subscribers")
		specJSON = fs.String("spec", "", "full job spec as JSON (overrides the individual spec flags)")
		wait     = fs.Bool("wait", false, "block until the job finishes and print its result")
		local    = fs.Bool("local", false, "run the spec in-process via jobs.Execute instead of the daemon")
		workers  = fs.Int("workers", 0, "-local worker pool (0 = all cores)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var spec jobs.Spec
	if *specJSON != "" {
		if err := json.Unmarshal([]byte(*specJSON), &spec); err != nil {
			return fmt.Errorf("-spec: %w", err)
		}
	} else {
		nsList, err := parseIntList(*ns)
		if err != nil {
			return fmt.Errorf("-ns: %w", err)
		}
		ksList, err := parseIntList(*ks)
		if err != nil {
			return fmt.Errorf("-ks: %w", err)
		}
		homesList, err := parseIntList(*homes)
		if err != nil {
			return fmt.Errorf("-homes: %w", err)
		}
		spec = jobs.Spec{
			Kind:        jobs.Kind(*kind),
			Algorithm:   *alg,
			Topology:    *topo,
			N:           *n,
			K:           *k,
			Homes:       homesList,
			Workload:    *workload,
			Degree:      *degree,
			Seed:        *seed,
			Scheduler:   *sched,
			Faults:      *faults,
			Ns:          nsList,
			Ks:          ksList,
			Priority:    *priority,
			TraceEvents: *traceEv,
		}
	}

	if *local {
		res, err := jobs.Execute(spec, *workers)
		if err != nil {
			return err
		}
		return printJSONValue(out, res, *jsonOut)
	}

	cl, err := dial(*socket)
	if err != nil {
		return err
	}
	defer cl.Close()
	snap, err := cl.Submit(spec)
	if err != nil {
		return err
	}
	if !*wait {
		if *jsonOut {
			return printJSONValue(out, snap, true)
		}
		fmt.Fprintf(out, "submitted %s (%s, %d cell(s))\n", snap.ID, snap.State, snap.Total)
		return nil
	}

	final, err := waitFinal(cl, snap.ID)
	if err != nil {
		return err
	}
	if final.State != jobs.StateDone {
		return fmt.Errorf("job %s %s: %s", final.ID, final.State, final.Error)
	}
	raw, err := cl.RawResult(final.ID)
	if err != nil {
		return err
	}
	return printJSONRaw(out, raw, *jsonOut)
}

func waitFinal(cl *rpc.Client, id string) (jobs.Snapshot, error) {
	for {
		snap, err := cl.Status(id)
		if err != nil {
			return jobs.Snapshot{}, err
		}
		if snap.State.Final() {
			return snap, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func cmdStatus(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	socket, jsonOut := common(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	id, err := oneArg(fs, "job id")
	if err != nil {
		return err
	}
	cl, err := dial(*socket)
	if err != nil {
		return err
	}
	defer cl.Close()
	snap, err := cl.Status(id)
	if err != nil {
		return err
	}
	if *jsonOut {
		return printJSONValue(out, snap, true)
	}
	fmt.Fprintln(out, formatSnapshot(snap))
	return nil
}

func cmdList(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	socket, jsonOut := common(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cl, err := dial(*socket)
	if err != nil {
		return err
	}
	defer cl.Close()
	snaps, err := cl.List()
	if err != nil {
		return err
	}
	if *jsonOut {
		return printJSONValue(out, snaps, true)
	}
	if len(snaps) == 0 {
		fmt.Fprintln(out, "no jobs")
		return nil
	}
	for _, s := range snaps {
		fmt.Fprintln(out, formatSnapshot(s))
	}
	return nil
}

func cmdResult(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("result", flag.ContinueOnError)
	socket, jsonOut := common(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	id, err := oneArg(fs, "job id")
	if err != nil {
		return err
	}
	cl, err := dial(*socket)
	if err != nil {
		return err
	}
	defer cl.Close()
	raw, err := cl.RawResult(id)
	if err != nil {
		return err
	}
	return printJSONRaw(out, raw, *jsonOut)
}

func cmdCancel(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cancel", flag.ContinueOnError)
	socket, jsonOut := common(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	id, err := oneArg(fs, "job id")
	if err != nil {
		return err
	}
	cl, err := dial(*socket)
	if err != nil {
		return err
	}
	defer cl.Close()
	snap, err := cl.Cancel(id)
	if err != nil {
		return err
	}
	if *jsonOut {
		return printJSONValue(out, snap, true)
	}
	fmt.Fprintln(out, formatSnapshot(snap))
	return nil
}

func cmdWatch(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	socket, jsonOut := common(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	job := "" // empty = the whole event stream
	if fs.NArg() > 0 {
		job = fs.Arg(0)
	}
	cl, err := dial(*socket)
	if err != nil {
		return err
	}
	defer cl.Close()
	if _, err := cl.Subscribe(job); err != nil {
		return err
	}
	if job != "" {
		// The job may already be finished (or finish between subscribe and
		// the first event); don't wait forever on a stream that will stay
		// silent.
		snap, err := cl.Status(job)
		if err != nil {
			return err
		}
		if snap.State.Final() {
			fmt.Fprintln(out, formatSnapshot(snap))
			return nil
		}
	}
	for n := range cl.Events() {
		var ev jobs.Event
		if err := json.Unmarshal(n.Params, &ev); err != nil {
			return fmt.Errorf("bad event: %w", err)
		}
		if *jsonOut {
			fmt.Fprintf(out, "%s\n", n.Params)
		} else {
			fmt.Fprintln(out, formatEvent(ev))
		}
		if job != "" && ev.Job != nil && ev.Job.ID == job && ev.Job.State.Final() {
			return nil
		}
	}
	return nil
}

func cmdDaemonStatus(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("daemon-status", flag.ContinueOnError)
	socket, jsonOut := common(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cl, err := dial(*socket)
	if err != nil {
		return err
	}
	defer cl.Close()
	st, err := cl.DaemonStatus()
	if err != nil {
		return err
	}
	if *jsonOut {
		return printJSONValue(out, st, true)
	}
	var stats jobs.Stats
	if err := json.Unmarshal(st.Stats, &stats); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s protocol %d pid %d on %s\n", st.Version, st.Protocol, st.PID, st.Socket)
	fmt.Fprintf(out, "jobs: %d queued, %d running, %d done, %d failed, %d cancelled\n",
		stats.Queued, stats.Running, stats.Done, stats.Failed, stats.Cancelled)
	fmt.Fprintf(out, "events: %d subscriber(s), %d dropped", stats.Subscribers, stats.Dropped)
	if stats.Draining {
		fmt.Fprint(out, " [draining]")
	}
	fmt.Fprintln(out)
	return nil
}

func cmdDrain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("drain", flag.ContinueOnError)
	socket, jsonOut := common(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cl, err := dial(*socket)
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := cl.Drain(); err != nil {
		return err
	}
	if *jsonOut {
		fmt.Fprintln(out, `{"draining":true}`)
	} else {
		fmt.Fprintln(out, "daemon draining")
	}
	return nil
}

func oneArg(fs *flag.FlagSet, what string) (string, error) {
	if fs.NArg() != 1 {
		return "", fmt.Errorf("expected exactly one %s argument", what)
	}
	return fs.Arg(0), nil
}

// parseIntList parses "64,128,256" (empty string = nil).
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// printJSONRaw emits the daemon's bytes verbatim with -json (the
// byte-identity contract) and re-indented for humans otherwise.
func printJSONRaw(out io.Writer, raw json.RawMessage, compact bool) error {
	if compact {
		_, err := fmt.Fprintf(out, "%s\n", raw)
		return err
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return err
	}
	return printIndented(out, v)
}

func printJSONValue(out io.Writer, v any, compact bool) error {
	if compact {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(out, "%s\n", b)
		return err
	}
	return printIndented(out, v)
}

func printIndented(out io.Writer, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", b)
	return err
}

func formatSnapshot(s jobs.Snapshot) string {
	line := fmt.Sprintf("%-4s %-7s %-10s %s  %d/%d", s.ID, s.Spec.Kind, s.Spec.Algorithm, s.State, s.Done, s.Total)
	if s.Error != "" {
		line += "  (" + s.Error + ")"
	}
	return line
}

func formatEvent(ev jobs.Event) string {
	switch {
	case ev.Trace != nil:
		t := ev.Trace
		line := fmt.Sprintf("%s trace step=%d agent=%d node=%d %s", ev.JobID, t.Step, t.Agent, t.Node, t.Kind)
		if t.Detail != "" {
			line += " " + t.Detail
		}
		return line
	case ev.Job != nil:
		return fmt.Sprintf("%s %s %d/%d", ev.Job.ID, ev.Type, ev.Job.Done, ev.Job.Total)
	default:
		return ev.Type
	}
}
