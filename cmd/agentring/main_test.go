package main

import (
	"bytes"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agentring/internal/jobs"
	"agentring/internal/rpc"
)

// startDaemon brings up an in-process engine + rpc server for the CLI
// to talk to, returning the socket path.
func startDaemon(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "arc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	socket := filepath.Join(dir, "d.sock")

	eng := jobs.New(jobs.Options{Workers: 1})
	t.Cleanup(eng.Close)
	srv := rpc.NewServer(eng, socket)
	ln, err := net.Listen("unix", socket)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		ln.Close()
	})
	return socket
}

var sweepArgs = []string{
	"-kind", "sweep", "-alg", "native",
	"-ns", "16,24", "-ks", "2,4", "-seed", "7", "-scheduler", "synchronous",
}

// TestDaemonMatchesLocal is the CLI half of the byte-identity
// guarantee: `submit -wait -json` through the daemon and
// `submit -local -json` in-process print the same bytes.
func TestDaemonMatchesLocal(t *testing.T) {
	socket := startDaemon(t)

	var viaDaemon bytes.Buffer
	args := append([]string{"submit", "-socket", socket, "-json", "-wait"}, sweepArgs...)
	if err := run(args, &viaDaemon); err != nil {
		t.Fatalf("submit -wait: %v", err)
	}

	var local bytes.Buffer
	args = append([]string{"submit", "-local", "-json", "-workers", "1"}, sweepArgs...)
	if err := run(args, &local); err != nil {
		t.Fatalf("submit -local: %v", err)
	}

	if !bytes.Equal(viaDaemon.Bytes(), local.Bytes()) {
		t.Errorf("daemon and local results differ:\n daemon: %s\n local:  %s", viaDaemon.String(), local.String())
	}
	var res jobs.Result
	if err := json.Unmarshal(local.Bytes(), &res); err != nil {
		t.Fatalf("local output is not a result payload: %v", err)
	}
	if len(res.Cells) != 4 {
		t.Errorf("want 4 cells, got %d", len(res.Cells))
	}
}

func TestSubmitStatusListResult(t *testing.T) {
	socket := startDaemon(t)

	var out bytes.Buffer
	args := append([]string{"submit", "-socket", socket, "-json"}, sweepArgs...)
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatalf("submit -json output: %v\n%s", err, out.String())
	}
	if snap.ID == "" || snap.Total != 4 {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}

	// Human-readable status line.
	out.Reset()
	if err := run([]string{"status", "-socket", socket, snap.ID}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), snap.ID) || !strings.Contains(out.String(), "sweep") {
		t.Errorf("status line: %q", out.String())
	}

	out.Reset()
	if err := run([]string{"list", "-socket", socket}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), snap.ID) {
		t.Errorf("list output: %q", out.String())
	}

	// result (indented) once the job lands.
	cl, err := rpc.Dial(socket)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := waitFinal(cl, snap.ID); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"result", "-socket", socket, snap.ID}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"cells"`) {
		t.Errorf("result output: %q", out.String())
	}
}

// TestWatchStreamsToFinal: watch on a queued job streams its lifecycle
// and terminates at the final state. A slow blocker job keeps the
// single runner busy so the watched job is still queued when the watch
// subscribes.
func TestWatchStreamsToFinal(t *testing.T) {
	socket := startDaemon(t)

	blocker := []string{"submit", "-socket", socket, "-json", "-kind", "sweep",
		"-alg", "logspace", "-ns", "128,256", "-ks", "8,16", "-scheduler", "synchronous"}
	var out bytes.Buffer
	if err := run(blocker, &out); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	args := append([]string{"submit", "-socket", socket, "-json", "-trace-events", "5"}, sweepArgs...)
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := run([]string{"watch", "-socket", socket, snap.ID}, &out); err != nil {
		t.Fatalf("watch: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), snap.ID) {
		t.Errorf("watch output has no mention of %s:\n%s", snap.ID, out.String())
	}
	// watch either streamed to the done event or (if the job won the
	// race) printed the final snapshot; both must show a final state.
	if !strings.Contains(out.String(), "done") {
		t.Errorf("watch output never reached a final state:\n%s", out.String())
	}
}

func TestWatchFinishedJobReturnsImmediately(t *testing.T) {
	socket := startDaemon(t)
	var out bytes.Buffer
	args := append([]string{"submit", "-socket", socket, "-json", "-wait"}, sweepArgs...)
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	// The only job is j1 and it is done; watch must not hang.
	out.Reset()
	if err := run([]string{"watch", "-socket", socket, "j1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "done") {
		t.Errorf("watch of finished job: %q", out.String())
	}
}

func TestCancelAndDaemonStatus(t *testing.T) {
	socket := startDaemon(t)

	// Blocker keeps the runner busy so the second job stays queued and
	// is cancellable deterministically.
	var out bytes.Buffer
	blocker := []string{"submit", "-socket", socket, "-json", "-kind", "sweep",
		"-alg", "logspace", "-ns", "512,1024", "-ks", "8,16", "-scheduler", "synchronous"}
	if err := run(blocker, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	args := append([]string{"submit", "-socket", socket, "-json"}, sweepArgs...)
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := run([]string{"cancel", "-socket", socket, snap.ID}, &out); err != nil {
		t.Fatal(err)
	}
	// The engine is fast enough that the "queued" job may already be
	// done by the time the cancel lands (cancel of a finished job is a
	// documented no-op), so accept either final state — the cancel
	// *semantics* are pinned deterministically in internal/jobs.
	if !strings.Contains(out.String(), snap.ID) ||
		(!strings.Contains(out.String(), "cancelled") && !strings.Contains(out.String(), "done")) {
		t.Errorf("cancel output: %q", out.String())
	}

	out.Reset()
	if err := run([]string{"daemon-status", "-socket", socket}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "protocol 1") || !strings.Contains(s, "jobs:") {
		t.Errorf("daemon-status output: %q", s)
	}
}

func TestSpecFlagOverridesFieldFlags(t *testing.T) {
	socket := startDaemon(t)
	var out bytes.Buffer
	spec := `{"kind":"sweep","algorithm":"native","ns":[16],"ks":[2],"seed":7,"scheduler":"synchronous"}`
	if err := run([]string{"submit", "-socket", socket, "-json", "-spec", spec}, &out); err != nil {
		t.Fatal(err)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Total != 1 || snap.Spec.Algorithm != "native" {
		t.Errorf("snapshot from -spec: %+v", snap)
	}
}

func TestErrorsSurface(t *testing.T) {
	socket := startDaemon(t)

	if err := run([]string{"status", "-socket", socket, "j999"}, &bytes.Buffer{}); err == nil {
		t.Error("status of unknown job must error")
	}
	if err := run([]string{"frobnicate"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown command must error")
	}
	if err := run([]string{}, &bytes.Buffer{}); err == nil {
		t.Error("missing command must error")
	}
	err := run([]string{"daemon-status", "-socket", "/nonexistent/never.sock"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "is agentringd running") {
		t.Errorf("dial failure message: %v", err)
	}
	args := append([]string{"submit", "-socket", socket, "-kind", "sweep", "-alg", "bogus"}, "-ns", "16", "-ks", "2")
	if err := run(args, &bytes.Buffer{}); err == nil {
		t.Error("bad algorithm must surface the daemon's invalid-spec error")
	}
}

func TestParseIntList(t *testing.T) {
	got, err := parseIntList("16, 24,32")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 16 || got[1] != 24 || got[2] != 32 {
		t.Fatalf("parseIntList = %v", got)
	}
	if nilList, err := parseIntList(""); err != nil || nilList != nil {
		t.Fatalf("empty list = %v, %v", nilList, err)
	}
	if _, err := parseIntList("16,x"); err == nil {
		t.Error("bad element must error")
	}
}

func TestHelp(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"help"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "submit") {
		t.Errorf("help output: %q", out.String())
	}
}
