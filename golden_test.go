package agentring_test

import (
	"hash/fnv"
	"reflect"
	"testing"

	"agentring"
)

// TestGoldenDeterminism pins the exact observable behaviour of the
// simulation engine: final positions, step counts, total moves, and the
// full trace event sequence (as an FNV-1a hash of the rendered trace)
// for every algorithm × scheduler combination on one fixed
// configuration. The expected values were recorded from the
// goroutine-channel engine that preceded the incremental coroutine
// engine; any semantic drift in scheduling order, message delivery, or
// queue handling shows up here as a hash mismatch before it can corrupt
// an experiment.
func TestGoldenDeterminism(t *testing.T) {
	homes := []int{0, 3, 4, 11, 17, 25}
	const n = 36

	type golden struct {
		alg       agentring.Algorithm
		sched     agentring.SchedulerKind
		positions []int
		steps     int
		moves     int
		traceHash uint64
	}
	goldens := []golden{
		{agentring.Native, agentring.RoundRobin, []int{9, 3, 33, 27, 21, 15}, 414, 408, 0xe851f227703134ff},
		{agentring.Native, agentring.RandomSched, []int{9, 3, 33, 27, 21, 15}, 414, 408, 0x307b90e14d0b748e},
		{agentring.Native, agentring.Synchronous, []int{9, 3, 33, 27, 21, 15}, 414, 408, 0x9557ab9c535f7cef},
		{agentring.Native, agentring.Adversarial, []int{9, 3, 33, 27, 21, 15}, 414, 408, 0x5516ab4480cd13df},
		{agentring.NativeKnowN, agentring.RoundRobin, []int{9, 3, 33, 27, 21, 15}, 414, 408, 0xe851f227703134ff},
		{agentring.NativeKnowN, agentring.RandomSched, []int{9, 3, 33, 27, 21, 15}, 414, 408, 0x307b90e14d0b748e},
		{agentring.NativeKnowN, agentring.Synchronous, []int{9, 3, 33, 27, 21, 15}, 414, 408, 0x9557ab9c535f7cef},
		{agentring.NativeKnowN, agentring.Adversarial, []int{9, 3, 33, 27, 21, 15}, 414, 408, 0x5516ab4480cd13df},
		{agentring.LogSpace, agentring.RoundRobin, []int{33, 3, 9, 15, 21, 27}, 491, 480, 0x9e16d3239768adcc},
		{agentring.LogSpace, agentring.RandomSched, []int{9, 3, 33, 27, 21, 15}, 491, 480, 0x98251ce8586a4e22},
		{agentring.LogSpace, agentring.Synchronous, []int{15, 3, 9, 33, 27, 21}, 491, 480, 0x3d0753eb1a9bae8f},
		{agentring.LogSpace, agentring.Adversarial, []int{33, 3, 27, 21, 15, 9}, 491, 480, 0x696535ff658f34f0},
		{agentring.Relaxed, agentring.RoundRobin, []int{9, 3, 33, 27, 21, 15}, 2790, 2784, 0x8c5cedd18455fe45},
		{agentring.Relaxed, agentring.RandomSched, []int{9, 3, 33, 27, 21, 15}, 2790, 2784, 0x31a32f2db3ed0614},
		{agentring.Relaxed, agentring.Synchronous, []int{9, 3, 33, 27, 21, 15}, 2790, 2784, 0x78800e1f0532c845},
		{agentring.Relaxed, agentring.Adversarial, []int{9, 3, 33, 27, 21, 15}, 2790, 2784, 0x128c4f6cf946c755},
		{agentring.NaiveHalting, agentring.RoundRobin, []int{9, 3, 33, 27, 21, 15}, 1062, 1056, 0x5175e445bf61d3bb},
		{agentring.NaiveHalting, agentring.RandomSched, []int{9, 3, 33, 27, 21, 15}, 1062, 1056, 0x685d1d610458d36},
		{agentring.NaiveHalting, agentring.Synchronous, []int{9, 3, 33, 27, 21, 15}, 1062, 1056, 0xa8d7bd872681289f},
		{agentring.NaiveHalting, agentring.Adversarial, []int{9, 3, 33, 27, 21, 15}, 1062, 1056, 0xd6c5ae33164133},
		{agentring.FirstFit, agentring.RoundRobin, []int{6, 9, 10, 17, 23, 31}, 42, 36, 0xacd4220087eb086b},
		{agentring.FirstFit, agentring.RandomSched, []int{6, 9, 10, 17, 23, 31}, 42, 36, 0x2e348a6e7842231f},
		{agentring.FirstFit, agentring.Synchronous, []int{6, 9, 10, 17, 23, 31}, 42, 36, 0xacd4220087eb086b},
		{agentring.FirstFit, agentring.Adversarial, []int{6, 9, 10, 17, 23, 31}, 42, 36, 0x7946a8e8b2e2cdbb},
	}

	for _, g := range goldens {
		t.Run(g.alg.String()+"/"+schedName(g.sched), func(t *testing.T) {
			rep, err := agentring.Run(g.alg, agentring.Config{
				N: n, Homes: homes, Scheduler: g.sched, Seed: 7, TraceCapacity: 1 << 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rep.Positions, g.positions) {
				t.Errorf("positions = %v, want %v", rep.Positions, g.positions)
			}
			if rep.Steps != g.steps {
				t.Errorf("steps = %d, want %d", rep.Steps, g.steps)
			}
			if rep.TotalMoves != g.moves {
				t.Errorf("total moves = %d, want %d", rep.TotalMoves, g.moves)
			}
			h := fnv.New64a()
			h.Write([]byte(rep.Trace))
			if got := h.Sum64(); got != g.traceHash {
				t.Errorf("trace hash = %#x, want %#x (event sequence drifted)", got, g.traceHash)
			}
		})
	}
}

func schedName(s agentring.SchedulerKind) string {
	switch s {
	case agentring.RoundRobin:
		return "roundrobin"
	case agentring.RandomSched:
		return "random"
	case agentring.Synchronous:
		return "synchronous"
	case agentring.Adversarial:
		return "adversarial"
	default:
		return "unknown"
	}
}
