package agentring

import (
	"fmt"
	"strconv"
	"strings"

	"agentring/internal/embed"
	"agentring/internal/ring"
	"agentring/internal/sim"
	"agentring/internal/topo"
)

// Topology kinds, as reported by Topology.Kind and accepted (with
// parameters) by ParseTopology.
const (
	KindRing   = "ring"
	KindBiRing = "biring"
	KindTorus  = "torus"
	KindTree   = "tree"
)

// Topology selects the network substrate of a run. The zero value is
// not usable; build one with NewRingTopology, NewBiRingTopology,
// NewTorusTopology, NewTreeTopology, or ParseTopology, and pass it via
// Config.Topology. A nil Config.Topology selects the paper's default,
// the unidirectional ring of Config.N nodes.
//
// Every shipped topology routes port 0 along a Hamiltonian cycle in
// node order — the ring itself, the bidirectional ring's forward
// direction, the Euler tour of a tree, and the twisted torus's east
// links — so the paper's port-0-only algorithms run unchanged on all of
// them and the ring uniformity predicate keeps its meaning.
type Topology struct {
	kind  string
	inner sim.Topology
	// emb is set for tree topologies: the Euler embedding projecting
	// virtual ring positions back to tree nodes.
	emb        *embed.Embedding
	tree       *Tree
	rows, cols int
}

// NewRingTopology returns the paper's unidirectional n-node ring — the
// substrate Run uses when Config.Topology is nil, made explicit.
func NewRingTopology(n int) (*Topology, error) {
	r, err := ring.New(n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return &Topology{kind: KindRing, inner: r}, nil
}

// NewBiRingTopology returns an n-node bidirectional ring: port 0 is the
// forward link (so ring algorithms behave identically), port 1 the
// backward link (what BiNative shortcuts through).
func NewBiRingTopology(n int) (*Topology, error) {
	b, err := topo.NewBiRing(n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return &Topology{kind: KindBiRing, inner: b}, nil
}

// NewTorusTopology returns a rows x cols unidirectional twisted torus
// in row-major numbering: port 0 ("east", wrapping into the next row at
// a row's end) forms a single Hamiltonian cycle, port 1 ("south") jumps
// to the same column of the next row. Ring algorithms deploy uniformly
// along the port-0 cycle.
func NewTorusTopology(rows, cols int) (*Topology, error) {
	t, err := topo.NewTorus(rows, cols)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return &Topology{kind: KindTorus, inner: t, rows: rows, cols: cols}, nil
}

// NewTreeTopology returns the tree's Euler-tour virtual ring rooted at
// root as an engine substrate: 2(n-1) virtual nodes numbered by tour
// position, each with the single out-port that traverses the tour's
// next directed tree edge. This is the Section 5 reduction as a
// first-class topology; RunOnTree is built on it.
func NewTreeTopology(t *Tree, root int) (*Topology, error) {
	if t == nil || t.inner == nil {
		return nil, fmt.Errorf("%w: nil tree", ErrConfig)
	}
	emb, err := embed.NewEmbedding(t.inner, root)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return &Topology{kind: KindTree, inner: emb.RingTopology(), emb: emb, tree: t}, nil
}

// ParseTopology builds a topology from a command-line style spec:
//
//	ring            unidirectional ring of n nodes
//	biring          bidirectional ring of n nodes
//	torus=RxC       R x C twisted torus (n ignored)
//	tree=0-1,1-2    tree with the given edge list, Euler-embedded
//	                rooted at node 0 (n ignored)
//
// n supplies the size for the ring families, whose specs carry none.
func ParseTopology(spec string, n int) (*Topology, error) {
	switch {
	case spec == KindRing || spec == "":
		return NewRingTopology(n)
	case spec == KindBiRing:
		return NewBiRingTopology(n)
	case strings.HasPrefix(spec, KindTorus+"="):
		dims := strings.SplitN(strings.TrimPrefix(spec, KindTorus+"="), "x", 2)
		if len(dims) != 2 {
			return nil, fmt.Errorf("%w: torus spec %q, want torus=RxC", ErrConfig, spec)
		}
		rows, err1 := strconv.Atoi(strings.TrimSpace(dims[0]))
		cols, err2 := strconv.Atoi(strings.TrimSpace(dims[1]))
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: torus spec %q, want torus=RxC", ErrConfig, spec)
		}
		return NewTorusTopology(rows, cols)
	case strings.HasPrefix(spec, KindTree+"="):
		edges, nodes, err := parseEdgeList(strings.TrimPrefix(spec, KindTree+"="))
		if err != nil {
			return nil, err
		}
		t, err := NewTree(nodes, edges)
		if err != nil {
			return nil, err
		}
		return NewTreeTopology(t, 0)
	default:
		return nil, fmt.Errorf("%w: unknown topology %q (want ring | biring | torus=RxC | tree=<edges>)", ErrConfig, spec)
	}
}

// parseEdgeList parses "0-1,1-2,..." into an edge slice, inferring the
// node count as max endpoint + 1.
func parseEdgeList(s string) ([][2]int, int, error) {
	parts := strings.Split(s, ",")
	edges := make([][2]int, 0, len(parts))
	nodes := 0
	for _, p := range parts {
		ends := strings.SplitN(strings.TrimSpace(p), "-", 2)
		if len(ends) != 2 {
			return nil, 0, fmt.Errorf("%w: edge %q, want u-v", ErrConfig, p)
		}
		u, err1 := strconv.Atoi(ends[0])
		v, err2 := strconv.Atoi(ends[1])
		if err1 != nil || err2 != nil || u < 0 || v < 0 {
			return nil, 0, fmt.Errorf("%w: edge %q, want u-v", ErrConfig, p)
		}
		edges = append(edges, [2]int{u, v})
		nodes = max(nodes, u+1, v+1)
	}
	return edges, nodes, nil
}

// Kind returns the topology family: ring, biring, torus, or tree.
func (t *Topology) Kind() string { return t.kind }

// Size returns the number of engine nodes — for trees, the 2(n-1)
// virtual ring positions, not the tree's own node count.
func (t *Topology) Size() int { return t.inner.Size() }

// String implements fmt.Stringer.
func (t *Topology) String() string {
	switch t.kind {
	case KindTorus:
		return fmt.Sprintf("torus(%dx%d)", t.rows, t.cols)
	case KindTree:
		return fmt.Sprintf("tree(%d nodes, euler ring %d)", t.tree.Size(), t.Size())
	default:
		return fmt.Sprintf("%s(%d)", t.kind, t.Size())
	}
}

// RandomHomes places k agents on distinct uniformly random nodes of the
// topology.
func (t *Topology) RandomHomes(k int, seed int64) ([]int, error) {
	return RandomHomes(t.Size(), k, seed)
}

// ClusteredHomes packs k agents contiguously from node 0.
func (t *Topology) ClusteredHomes(k int) ([]int, error) {
	return ClusteredHomes(t.Size(), k)
}

// UniformHomes places k agents already uniformly along the node order
// (the port-0 Hamiltonian cycle).
func (t *Topology) UniformHomes(k int) ([]int, error) {
	return UniformHomes(t.Size(), k)
}

// PeriodicHomes builds an initial configuration with symmetry degree
// exactly l along the node order (requires l | k and l | size).
func (t *Topology) PeriodicHomes(k, l int, seed int64) ([]int, error) {
	return PeriodicHomes(t.Size(), k, l, seed)
}

// TreeHomes maps distinct tree nodes to their virtual-ring homes (the
// first Euler visit of each node). Tree topologies only.
func (t *Topology) TreeHomes(treeNodes []int) ([]int, error) {
	if t.kind != KindTree {
		return nil, fmt.Errorf("%w: TreeHomes on %s topology", ErrConfig, t.kind)
	}
	homes, err := t.emb.VirtualHomes(treeNodes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return homes, nil
}

// TreeNodes projects virtual-ring positions back to tree nodes. Tree
// topologies only.
func (t *Topology) TreeNodes(positions []int) ([]int, error) {
	if t.kind != KindTree {
		return nil, fmt.Errorf("%w: TreeNodes on %s topology", ErrConfig, t.kind)
	}
	nodes, err := t.emb.TreePositions(positions)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return nodes, nil
}

// Tree returns the underlying tree of a tree topology, or nil.
func (t *Topology) Tree() *Tree { return t.tree }
