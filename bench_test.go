// Benchmarks regenerating every table and figure claim of the paper.
// Each benchmark reports the paper's own metrics (total moves, ideal
// time in rounds, peak memory in words) via b.ReportMetric, so
// `go test -bench=. -benchmem` prints the rows EXPERIMENTS.md records.
package agentring_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"agentring"
	"agentring/internal/experiments"
)

func reportRow(b *testing.B, row experiments.Row) {
	b.Helper()
	if !row.Uniform {
		b.Fatalf("run not uniform: %+v", row)
	}
	b.ReportMetric(float64(row.TotalMoves), "moves")
	b.ReportMetric(float64(row.MaxMoves), "moves/agent")
	b.ReportMetric(float64(row.Rounds), "rounds")
	b.ReportMetric(float64(row.PeakWords), "memwords")
	b.ReportMetric(float64(row.Messages), "msgs")
}

func benchSpec(b *testing.B, spec experiments.Spec) {
	b.Helper()
	var last experiments.Row
	for i := 0; i < b.N; i++ {
		row, err := experiments.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		last = row
	}
	reportRow(b, last)
}

// BenchmarkTable1Alg1 regenerates Table 1 column 1 (Algorithm 1:
// O(k log n) memory, O(n) time, O(kn) moves) over an (n, k) grid.
func BenchmarkTable1Alg1(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		for _, k := range []int{4, 16, 64} {
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				benchSpec(b, experiments.Spec{
					Algorithm: agentring.Native, N: n, K: k,
					Workload: experiments.WorkloadRandom, Seed: int64(n + k),
					Scheduler: agentring.Synchronous,
				})
			})
		}
	}
}

// BenchmarkTable1Alg2 regenerates Table 1 column 2 (Algorithms 2+3:
// O(log n) memory, O(n log k) time, O(kn) moves).
func BenchmarkTable1Alg2(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		for _, k := range []int{4, 16, 64} {
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				benchSpec(b, experiments.Spec{
					Algorithm: agentring.LogSpace, N: n, K: k,
					Workload: experiments.WorkloadRandom, Seed: int64(n + k),
					Scheduler: agentring.Synchronous,
				})
			})
		}
	}
}

// BenchmarkTable1Relaxed regenerates Table 1 column 4 (relaxed
// algorithm: O((k/l) log(n/l)) memory, O(n/l) time, O(kn/l) moves) as a
// sweep over the symmetry degree l.
func BenchmarkTable1Relaxed(b *testing.B) {
	const n, k = 512, 16
	for _, l := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d/k=%d/l=%d", n, k, l), func(b *testing.B) {
			benchSpec(b, experiments.Spec{
				Algorithm: agentring.Relaxed, N: n, K: k,
				Workload: experiments.WorkloadPeriodic, Degree: l, Seed: 9,
				Scheduler: agentring.Synchronous,
			})
		})
	}
}

// BenchmarkFig3LowerBound measures the Theorem 1 configuration: all
// agents clustered in a quarter arc, forcing >= kn/16 total moves for
// every algorithm.
func BenchmarkFig3LowerBound(b *testing.B) {
	const n, k = 256, 32
	algs := []agentring.Algorithm{agentring.Native, agentring.LogSpace, agentring.Relaxed}
	for _, alg := range algs {
		b.Run(alg.String(), func(b *testing.B) {
			var moves, floor int
			for i := 0; i < b.N; i++ {
				var err error
				moves, floor, err = experiments.LowerBound(alg, n, k)
				if err != nil {
					b.Fatal(err)
				}
			}
			if moves < floor {
				b.Fatalf("moves %d below Theorem 1 floor %d", moves, floor)
			}
			b.ReportMetric(float64(moves), "moves")
			b.ReportMetric(float64(floor), "floor")
		})
	}
}

// BenchmarkFig7Impossibility replays the Theorem 5 pumping
// construction: the estimate-then-halt algorithm succeeds on the base
// ring and misdeploys on the pumped ring. The metric "pumpedUniform"
// must stay 0.
func BenchmarkFig7Impossibility(b *testing.B) {
	base := []int{0, 1, 5, 7, 8, 10}
	bigN, bigHomes, err := agentring.PumpedHomes(12, base, 5, 5)
	if err != nil {
		b.Fatal(err)
	}
	var pumped agentring.Report
	for i := 0; i < b.N; i++ {
		pumped, err = agentring.Run(agentring.NaiveHalting, agentring.Config{N: bigN, Homes: bigHomes})
		if err != nil {
			b.Fatal(err)
		}
	}
	if pumped.Uniform {
		b.Fatal("pumped ring must not be uniform under the naive algorithm")
	}
	b.ReportMetric(0, "pumpedUniform")
	b.ReportMetric(float64(pumped.TotalMoves), "moves")
}

// BenchmarkFig9Recovery measures the misestimation-recovery scenario of
// Fig 9 (n=27, k=9, one agent estimates correctly and fixes the rest).
func BenchmarkFig9Recovery(b *testing.B) {
	homes := []int{0, 11, 12, 15, 16, 19, 20, 23, 24}
	var rep agentring.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = agentring.Run(agentring.Relaxed, agentring.Config{N: 27, Homes: homes})
		if err != nil {
			b.Fatal(err)
		}
	}
	if !rep.Uniform {
		b.Fatalf("Fig 9 not uniform: %s", rep.Why)
	}
	b.ReportMetric(float64(rep.TotalMoves), "moves")
	b.ReportMetric(float64(rep.MessagesSent), "msgs")
}

// BenchmarkFig11Periodic measures the (N,l)-periodic-ring case of
// Fig 11 where every agent misestimates consistently yet uniform
// deployment holds.
func BenchmarkFig11Periodic(b *testing.B) {
	homes := []int{0, 2, 6, 8} // gaps (2,4)^2 on a 12-ring
	var rep agentring.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = agentring.Run(agentring.Relaxed, agentring.Config{N: 12, Homes: homes})
		if err != nil {
			b.Fatal(err)
		}
	}
	if !rep.Uniform {
		b.Fatalf("Fig 11 not uniform: %s", rep.Why)
	}
	b.ReportMetric(float64(rep.TotalMoves), "moves")
}

// BenchmarkRendezvousContrast quantifies the intro's solvability
// contrast: on a periodic configuration uniform deployment succeeds
// while rendezvous is impossible. Reported metric "udUniform" must be 1.
func BenchmarkRendezvousContrast(b *testing.B) {
	homes, err := agentring.PeriodicHomes(24, 8, 4, 3)
	if err != nil {
		b.Fatal(err)
	}
	var rep agentring.Report
	for i := 0; i < b.N; i++ {
		rep, err = agentring.Run(agentring.LogSpace, agentring.Config{N: 24, Homes: homes})
		if err != nil {
			b.Fatal(err)
		}
	}
	if !rep.Uniform {
		b.Fatal("uniform deployment must succeed where rendezvous cannot")
	}
	b.ReportMetric(1, "udUniform")
	b.ReportMetric(float64(rep.TotalMoves), "moves")
}

// BenchmarkSchedulerAblation measures how the interleaving policy
// affects cost (correctness must hold under all schedulers).
func BenchmarkSchedulerAblation(b *testing.B) {
	homes, err := agentring.RandomHomes(128, 16, 77)
	if err != nil {
		b.Fatal(err)
	}
	scheds := map[string]agentring.SchedulerKind{
		"roundrobin":  agentring.RoundRobin,
		"random":      agentring.RandomSched,
		"synchronous": agentring.Synchronous,
		"adversarial": agentring.Adversarial,
	}
	for name, kind := range scheds {
		b.Run(name, func(b *testing.B) {
			var rep agentring.Report
			for i := 0; i < b.N; i++ {
				rep, err = agentring.Run(agentring.LogSpace, agentring.Config{
					N: 128, Homes: homes, Scheduler: kind, Seed: 7, AdversaryBound: 16,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			if !rep.Uniform {
				b.Fatalf("not uniform under %s", name)
			}
			b.ReportMetric(float64(rep.TotalMoves), "moves")
			b.ReportMetric(float64(rep.Steps), "steps")
		})
	}
}

// BenchmarkAlgorithmComparison runs all three paper algorithms plus the
// first-fit ablation on one shared configuration, the cross-column
// comparison of Table 1.
func BenchmarkAlgorithmComparison(b *testing.B) {
	const n, k = 256, 16
	homes, err := agentring.RandomHomes(n, k, 123)
	if err != nil {
		b.Fatal(err)
	}
	algs := []agentring.Algorithm{
		agentring.Native, agentring.NativeKnowN, agentring.LogSpace,
		agentring.Relaxed, agentring.FirstFit,
	}
	for _, alg := range algs {
		b.Run(alg.String(), func(b *testing.B) {
			var rep agentring.Report
			for i := 0; i < b.N; i++ {
				rep, err = agentring.Run(alg, agentring.Config{
					N: n, Homes: homes, Scheduler: agentring.Synchronous,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			if alg != agentring.FirstFit && !rep.Uniform {
				b.Fatalf("%s not uniform: %s", alg, rep.Why)
			}
			uniform := 0.0
			if rep.Uniform {
				uniform = 1.0
			}
			b.ReportMetric(uniform, "uniform")
			b.ReportMetric(float64(rep.TotalMoves), "moves")
			b.ReportMetric(float64(rep.Rounds), "rounds")
			b.ReportMetric(float64(rep.PeakWords), "memwords")
		})
	}
}

// BenchmarkEngineSteadyState measures end-to-end stepping cost of the
// incremental engine across ring sizes (k fixed at 100, round-robin):
// ns/step must stay flat as n grows. allocs/op here includes the O(n+k)
// engine construction each iteration; the allocation-free guarantee of
// the step loop itself is isolated by internal/sim's
// BenchmarkSteadyState, which excludes setup from the timed region. The
// paper's O(n)/O(n log k) time claims are only observable at these
// scales when simulator overhead is O(1) per action.
func BenchmarkEngineSteadyState(b *testing.B) {
	for _, nk := range [][2]int{{1000, 100}, {10000, 100}, {100000, 100}, {1000000, 10}} {
		n, k := nk[0], nk[1]
		b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
			if n >= 1000000 && testing.Short() {
				b.Skip("million-node row skipped in -short mode")
			}
			homes, err := agentring.RandomHomes(n, k, int64(n))
			if err != nil {
				b.Fatal(err)
			}
			var rep agentring.Report
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err = agentring.Run(agentring.Native, agentring.Config{N: n, Homes: homes})
				if err != nil {
					b.Fatal(err)
				}
			}
			if !rep.Uniform {
				b.Fatal("not uniform")
			}
			b.ReportMetric(float64(rep.Steps), "steps/op")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(rep.Steps), "ns/step")
		})
	}
}

// BenchmarkRunBatch measures the batched sweep entry point: many
// independent runs over a bounded worker pool, the "millions of runs"
// workload shape. runs/sec is the headline number.
func BenchmarkRunBatch(b *testing.B) {
	const jobs = 64
	mkJobs := func(b *testing.B) []agentring.Job {
		out := make([]agentring.Job, jobs)
		for i := range out {
			homes, err := agentring.RandomHomes(128, 16, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			out[i] = agentring.Job{
				Algorithm: agentring.LogSpace,
				Config:    agentring.Config{N: 128, Homes: homes},
			}
		}
		return out
	}
	for _, workers := range []int{1, 0} { // 0 = all cores
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			js := mkJobs(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results := agentring.RunBatch(context.Background(), js, agentring.BatchOptions{Workers: workers})
				for _, res := range results {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
			b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "runs/sec")
		})
	}
}

// BenchmarkEngineThroughput measures raw simulator speed (atomic
// actions per second) to contextualize the other numbers.
func BenchmarkEngineThroughput(b *testing.B) {
	homes, err := agentring.RandomHomes(512, 32, 5)
	if err != nil {
		b.Fatal(err)
	}
	var rep agentring.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = agentring.Run(agentring.Native, agentring.Config{N: 512, Homes: homes})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Steps), "steps/run")
}

// BenchmarkExploreParallel measures the model checker's throughput on
// a fixed heavy placement (native algorithm, n=8, four clustered
// agents: 1693 states) across worker-pool sizes, plus one deeper n=7
// five-agent placement where schedules run long enough that the
// checkpoint search's O(stride)-per-state cost separates clearly from
// the old O(depth) replay-from-root. Three metrics feed the benchdiff
// gate: ns/state and allocs/state (lower is better — allocs/state is
// what keeps the pooled checkpoints honest), and speedup over the
// workers=1 rate of the same sub-benchmark run (higher is better, so
// flat parallel scaling trips the gate rather than hiding behind an
// unchanged ns/state). states/sec stays the human-facing rate; the
// speedup a machine can show is of course bounded by the cores the
// scheduler actually has.
func BenchmarkExploreParallel(b *testing.B) {
	cases := []struct {
		name string
		cfg  agentring.Config
	}{
		{"n8", agentring.Config{N: 8, Homes: []int{0, 1, 2, 3}}},
		{"deep-n7", agentring.Config{N: 7, Homes: []int{0, 1, 2, 3, 4}}},
	}
	for _, tc := range cases {
		// The workers=1 rate of the most recent sequential run, the
		// denominator of the speedup metric. Sub-benchmarks run in
		// order, so it is always set before the parallel ones read it.
		var baseRate float64
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(b *testing.B) {
				var rep agentring.ExploreReport
				var ms0, ms1 runtime.MemStats
				runtime.ReadMemStats(&ms0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := agentring.Explore(context.Background(), agentring.Native, tc.cfg,
						agentring.ExploreOptions{Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					if !r.Complete || r.Counterexample != nil {
						b.Fatalf("bad search: %+v", r)
					}
					rep = r
				}
				b.StopTimer()
				runtime.ReadMemStats(&ms1)
				states := float64(rep.States) * float64(b.N)
				rate := states / b.Elapsed().Seconds()
				b.ReportMetric(rate, "states/sec")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/states, "ns/state")
				b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/states, "allocs/state")
				if workers == 1 {
					baseRate = rate
				}
				if baseRate > 0 {
					b.ReportMetric(rate/baseRate, "speedup")
				}
			})
		}
	}
}
