package agentring_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryPackageHasPackageDocs is the docs gate: every package in the
// module — the facade, every internal package, every command, every
// example — must carry package-level documentation (a doc comment on
// its package clause in at least one non-test file). New packages fail
// this test, and therefore CI, until they are documented.
func TestEveryPackageHasPackageDocs(t *testing.T) {
	pkgDirs := map[string][]string{} // dir -> non-test .go files
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pkgDirs[dir] = append(pkgDirs[dir], path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgDirs) < 20 {
		t.Fatalf("found only %d package directories; the walk looks broken", len(pkgDirs))
	}
	fset := token.NewFileSet()
	for dir, files := range pkgDirs {
		documented := false
		for _, file := range files {
			f, err := parser.ParseFile(fset, file, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Errorf("%s: %v", file, err)
				continue
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package %s has no package documentation: add a doc.go or a doc comment on the package clause", dir)
		}
	}
}
