package agentring

import (
	"fmt"
	"strconv"
	"strings"

	"agentring/internal/ring"
	"agentring/internal/sim"
)

// FaultEvent schedules one link-state mutation of the run's topology:
// once Step atomic actions have executed, the directed edge leaving
// node From through out-port Port switches to the given state.
// Mutations apply strictly between atomic actions.
//
// A failed edge freezes its FIFO link: agents already in transit on it
// (and agents that move onto it while it is down) are parked in the
// link buffer — frozen, never lost — and resume, in order, when the
// edge is repaired. A configuration where every enabled action sits on
// failed links is not stuck forever: pending fault events still fire
// (repairs are autonomous), so "eventually repaired" schedules always
// make progress. If a link stays down with agents frozen on it, the run
// quiesces with those agents in transit, which fails both termination
// definitions and the uniformity predicate checkers.
//
// Setting an edge to its current state is a no-op: no epoch advance, no
// trace event. An all-links-up schedule is therefore byte-identical to
// running without one.
type FaultEvent struct {
	// Step is the atomic-action count at which the event fires.
	Step int `json:"step"`
	// From and Port name the directed edge by its tail node and
	// out-port — the same addressing a program's MoveVia(Port) uses.
	// On the default unidirectional ring every node has the single
	// out-port 0.
	From int `json:"from"`
	Port int `json:"port"`
	// Up is the edge's new state: false fails the link, true repairs it.
	Up bool `json:"up"`
}

// ParseFaults parses a command-line style fault schedule: a
// comma-separated list of events, each
//
//	STEP:FROM[/PORT]:down|up
//
// e.g. "10:3:down,40:3:up" (the edge leaving node 3 through port 0
// fails after 10 atomic actions and is repaired after 40), or
// "5:2/1:down" for multi-port substrates. Events may be given in any
// order; the engine applies them by Step.
func ParseFaults(spec string) ([]FaultEvent, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var events []FaultEvent
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("%w: fault event %q, want STEP:FROM[/PORT]:down|up", ErrConfig, part)
		}
		step, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil || step < 0 {
			return nil, fmt.Errorf("%w: fault step %q", ErrConfig, fields[0])
		}
		from, port := strings.TrimSpace(fields[1]), 0
		if at := strings.IndexByte(from, '/'); at >= 0 {
			port, err = strconv.Atoi(strings.TrimSpace(from[at+1:]))
			if err != nil || port < 0 {
				return nil, fmt.Errorf("%w: fault port %q", ErrConfig, fields[1])
			}
			from = from[:at]
		}
		node, err := strconv.Atoi(from)
		if err != nil || node < 0 {
			return nil, fmt.Errorf("%w: fault node %q", ErrConfig, fields[1])
		}
		var up bool
		switch strings.TrimSpace(fields[2]) {
		case "down":
			up = false
		case "up":
			up = true
		default:
			return nil, fmt.Errorf("%w: fault state %q, want down or up", ErrConfig, fields[2])
		}
		events = append(events, FaultEvent{Step: step, From: node, Port: port, Up: up})
	}
	return events, nil
}

// FormatFaults renders events in the ParseFaults syntax.
func FormatFaults(events []FaultEvent) string {
	parts := make([]string, len(events))
	for i, ev := range events {
		state := "down"
		if ev.Up {
			state = "up"
		}
		edge := strconv.Itoa(ev.From)
		if ev.Port != 0 {
			edge += "/" + strconv.Itoa(ev.Port)
		}
		parts[i] = fmt.Sprintf("%d:%s:%s", ev.Step, edge, state)
	}
	return strings.Join(parts, ",")
}

// faultSchedule converts the public event list to the engine's form.
func faultSchedule(events []FaultEvent) sim.FaultSchedule {
	if len(events) == 0 {
		return nil
	}
	fs := make(sim.FaultSchedule, len(events))
	for i, ev := range events {
		fs[i] = sim.FaultEvent{Step: ev.Step, From: ring.NodeID(ev.From), Port: ev.Port, Up: ev.Up}
	}
	return fs
}
