package agentring_test

import (
	"errors"
	"reflect"
	"testing"

	"agentring"
)

func batchJobs(t *testing.T, count int) []agentring.Job {
	t.Helper()
	jobs := make([]agentring.Job, count)
	for i := range jobs {
		n := 24 + 12*(i%5)
		homes, err := agentring.RandomHomes(n, 6, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = agentring.Job{
			Algorithm: agentring.LogSpace,
			Config:    agentring.Config{N: n, Homes: homes},
		}
	}
	return jobs
}

func TestRunBatchMatchesSequentialRuns(t *testing.T) {
	jobs := batchJobs(t, 40)
	results := agentring.RunBatch(jobs, agentring.BatchOptions{Workers: 4})
	if len(results) != len(jobs) {
		t.Fatalf("results = %d, want %d", len(results), len(jobs))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		want, err := agentring.Run(jobs[i].Algorithm, jobs[i].Config)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Report.Positions, want.Positions) {
			t.Errorf("job %d positions %v != sequential %v", i, res.Report.Positions, want.Positions)
		}
		if res.Report.Steps != want.Steps {
			t.Errorf("job %d steps %d != sequential %d", i, res.Report.Steps, want.Steps)
		}
		if !reflect.DeepEqual(res.Job, jobs[i]) {
			t.Errorf("job %d result misordered: %+v", i, res.Job)
		}
	}
}

func TestRunBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := batchJobs(t, 25)
	one := agentring.RunBatch(jobs, agentring.BatchOptions{Workers: 1})
	many := agentring.RunBatch(jobs, agentring.BatchOptions{Workers: 8})
	for i := range jobs {
		if !reflect.DeepEqual(one[i].Report.Positions, many[i].Report.Positions) {
			t.Errorf("job %d: workers=1 %v, workers=8 %v",
				i, one[i].Report.Positions, many[i].Report.Positions)
		}
	}
}

func TestRunBatchIsolatesFailures(t *testing.T) {
	jobs := batchJobs(t, 3)
	jobs[1].Config.N = -1 // invalid; must fail alone
	results := agentring.RunBatch(jobs, agentring.BatchOptions{})
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy jobs failed: %v, %v", results[0].Err, results[2].Err)
	}
	if !errors.Is(results[1].Err, agentring.ErrConfig) {
		t.Errorf("bad job error = %v, want ErrConfig", results[1].Err)
	}
}

func TestRunBatchEmpty(t *testing.T) {
	if got := agentring.RunBatch(nil, agentring.BatchOptions{}); len(got) != 0 {
		t.Errorf("RunBatch(nil) = %v", got)
	}
}

func TestSweepOrdersByConfig(t *testing.T) {
	var cfgs []agentring.Config
	for _, n := range []int{16, 24, 32} {
		homes, err := agentring.UniformHomes(n, 4)
		if err != nil {
			t.Fatal(err)
		}
		cfgs = append(cfgs, agentring.Config{N: n, Homes: homes})
	}
	results := agentring.Sweep(agentring.Native, cfgs, agentring.BatchOptions{Workers: 2})
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("sweep %d: %v", i, res.Err)
		}
		if res.Job.Config.N != cfgs[i].N {
			t.Errorf("result %d is for n=%d, want n=%d", i, res.Job.Config.N, cfgs[i].N)
		}
		if !res.Report.Uniform {
			t.Errorf("n=%d not uniform: %s", res.Job.Config.N, res.Report.Why)
		}
	}
}

func TestConcurrentTimeoutConfigurable(t *testing.T) {
	homes, err := agentring.UniformHomes(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A 1ns budget must trip the netsim deadline, proving Config.Timeout
	// reaches the substrate.
	_, err = agentring.RunConcurrent(agentring.Native, agentring.Config{
		N: 12, Homes: homes, Timeout: 1,
	})
	if err == nil {
		t.Fatal("1ns timeout did not fail the run")
	}
}
