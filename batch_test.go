package agentring_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"agentring"
)

func batchJobs(t *testing.T, count int) []agentring.Job {
	t.Helper()
	jobs := make([]agentring.Job, count)
	for i := range jobs {
		n := 24 + 12*(i%5)
		homes, err := agentring.RandomHomes(n, 6, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = agentring.Job{
			Algorithm: agentring.LogSpace,
			Config:    agentring.Config{N: n, Homes: homes},
		}
	}
	return jobs
}

func TestRunBatchMatchesSequentialRuns(t *testing.T) {
	jobs := batchJobs(t, 40)
	results := agentring.RunBatch(context.Background(), jobs, agentring.BatchOptions{Workers: 4})
	if len(results) != len(jobs) {
		t.Fatalf("results = %d, want %d", len(results), len(jobs))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		want, err := agentring.Run(jobs[i].Algorithm, jobs[i].Config)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Report.Positions, want.Positions) {
			t.Errorf("job %d positions %v != sequential %v", i, res.Report.Positions, want.Positions)
		}
		if res.Report.Steps != want.Steps {
			t.Errorf("job %d steps %d != sequential %d", i, res.Report.Steps, want.Steps)
		}
		if !reflect.DeepEqual(res.Job, jobs[i]) {
			t.Errorf("job %d result misordered: %+v", i, res.Job)
		}
	}
}

func TestRunBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := batchJobs(t, 25)
	one := agentring.RunBatch(context.Background(), jobs, agentring.BatchOptions{Workers: 1})
	many := agentring.RunBatch(context.Background(), jobs, agentring.BatchOptions{Workers: 8})
	for i := range jobs {
		if !reflect.DeepEqual(one[i].Report.Positions, many[i].Report.Positions) {
			t.Errorf("job %d: workers=1 %v, workers=8 %v",
				i, one[i].Report.Positions, many[i].Report.Positions)
		}
	}
}

func TestRunBatchIsolatesFailures(t *testing.T) {
	jobs := batchJobs(t, 3)
	jobs[1].Config.N = -1 // invalid; must fail alone
	results := agentring.RunBatch(context.Background(), jobs, agentring.BatchOptions{})
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy jobs failed: %v, %v", results[0].Err, results[2].Err)
	}
	if !errors.Is(results[1].Err, agentring.ErrConfig) {
		t.Errorf("bad job error = %v, want ErrConfig", results[1].Err)
	}
}

func TestRunBatchEmpty(t *testing.T) {
	if got := agentring.RunBatch(context.Background(), nil, agentring.BatchOptions{}); len(got) != 0 {
		t.Errorf("RunBatch(nil) = %v", got)
	}
}

func TestSweepOrdersByConfig(t *testing.T) {
	var cfgs []agentring.Config
	for _, n := range []int{16, 24, 32} {
		homes, err := agentring.UniformHomes(n, 4)
		if err != nil {
			t.Fatal(err)
		}
		cfgs = append(cfgs, agentring.Config{N: n, Homes: homes})
	}
	results := agentring.Sweep(context.Background(), agentring.Native, cfgs, agentring.BatchOptions{Workers: 2})
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("sweep %d: %v", i, res.Err)
		}
		if res.Job.Config.N != cfgs[i].N {
			t.Errorf("result %d is for n=%d, want n=%d", i, res.Job.Config.N, cfgs[i].N)
		}
		if !res.Report.Uniform {
			t.Errorf("n=%d not uniform: %s", res.Job.Config.N, res.Report.Why)
		}
	}
}

func TestRunBatchContextCancel(t *testing.T) {
	jobs := batchJobs(t, 30)
	ctx, cancel := context.WithCancel(context.Background())
	var fired atomic.Bool
	results := agentring.RunBatch(ctx, jobs, agentring.BatchOptions{
		Workers: 2,
		OnResult: func(i int, r agentring.JobResult) {
			// Cancel after the first completion: later jobs must be
			// skipped with the context error instead of running.
			if fired.CompareAndSwap(false, true) {
				cancel()
			}
		},
	})
	defer cancel()
	var ran, skipped int
	for i, res := range results {
		switch {
		case res.Err == nil:
			ran++
		case errors.Is(res.Err, context.Canceled):
			skipped++
		default:
			t.Fatalf("job %d: unexpected error %v", i, res.Err)
		}
	}
	if ran == 0 {
		t.Error("no job completed before the cancel")
	}
	if skipped == 0 {
		t.Error("no job was skipped by the cancel")
	}
}

func TestRunBatchPreCancelledSkipsEverything(t *testing.T) {
	jobs := batchJobs(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, res := range agentring.RunBatch(ctx, jobs, agentring.BatchOptions{}) {
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("job %d err = %v, want context.Canceled", i, res.Err)
		}
	}
	// The deprecated BatchOptions.Context field still works when no
	// context argument is supplied (the pre-redesign call shape).
	for i, res := range agentring.RunBatch(nil, jobs, agentring.BatchOptions{Context: ctx}) {
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("legacy job %d err = %v, want context.Canceled", i, res.Err)
		}
	}
}

func TestRunBatchOnResultStreamsEveryJob(t *testing.T) {
	jobs := batchJobs(t, 12)
	var mu sync.Mutex
	seen := make(map[int]agentring.JobResult)
	results := agentring.RunBatch(context.Background(), jobs, agentring.BatchOptions{
		Workers: 4,
		OnResult: func(i int, r agentring.JobResult) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := seen[i]; dup {
				t.Errorf("job %d reported twice", i)
			}
			seen[i] = r
		},
	})
	if len(seen) != len(jobs) {
		t.Fatalf("OnResult fired for %d jobs, want %d", len(seen), len(jobs))
	}
	for i := range jobs {
		if !reflect.DeepEqual(seen[i].Report.Positions, results[i].Report.Positions) {
			t.Errorf("job %d: streamed positions %v != returned %v",
				i, seen[i].Report.Positions, results[i].Report.Positions)
		}
	}
}

func TestConcurrentTimeoutConfigurable(t *testing.T) {
	homes, err := agentring.UniformHomes(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A 1ns budget must trip the netsim deadline, proving Config.Timeout
	// reaches the substrate.
	_, err = agentring.RunConcurrent(agentring.Native, agentring.Config{
		N: 12, Homes: homes, Timeout: 1,
	})
	if err == nil {
		t.Fatal("1ns timeout did not fail the run")
	}
}
