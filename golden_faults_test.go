package agentring_test

import (
	"reflect"
	"testing"

	"agentring"
)

// TestDynamicEngineMatchesGoldenTraces cross-validates the dynamic-edge
// engine against the static one on the full golden matrix: with an
// all-links-up fault schedule (every event restores a link that is
// already up, i.e. a no-op), all 24 algorithm × scheduler combinations
// must reproduce the static run's positions, step counts, total moves,
// and the trace byte-for-byte. This pins that the fault plumbing —
// schedule sorting, the applyDueFaults call per decision point, the
// down-mask checks in the enabled-choice scan — is invisible until a
// link actually fails.
func TestDynamicEngineMatchesGoldenTraces(t *testing.T) {
	homes := []int{0, 3, 4, 11, 17, 25}
	const n = 36

	// No-op events scattered across the run, including step 0 and steps
	// far beyond quiescence, on several distinct edges.
	allUp := []agentring.FaultEvent{
		{Step: 0, From: 0, Port: 0, Up: true},
		{Step: 7, From: 17, Port: 0, Up: true},
		{Step: 100, From: 35, Port: 0, Up: true},
		{Step: 1 << 20, From: 5, Port: 0, Up: true},
	}

	algs := []agentring.Algorithm{
		agentring.Native, agentring.NativeKnowN, agentring.LogSpace,
		agentring.Relaxed, agentring.NaiveHalting, agentring.FirstFit,
	}
	scheds := []agentring.SchedulerKind{
		agentring.RoundRobin, agentring.RandomSched, agentring.Synchronous, agentring.Adversarial,
	}
	for _, alg := range algs {
		for _, sched := range scheds {
			t.Run(alg.String()+"/"+schedName(sched), func(t *testing.T) {
				cfg := agentring.Config{
					N: n, Homes: homes, Scheduler: sched, Seed: 7, TraceCapacity: 1 << 20,
				}
				static, err := agentring.Run(alg, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Faults = allUp
				dynamic, err := agentring.Run(alg, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(dynamic.Positions, static.Positions) {
					t.Errorf("positions = %v, want %v", dynamic.Positions, static.Positions)
				}
				if dynamic.Steps != static.Steps {
					t.Errorf("steps = %d, want %d", dynamic.Steps, static.Steps)
				}
				if dynamic.TotalMoves != static.TotalMoves {
					t.Errorf("total moves = %d, want %d", dynamic.TotalMoves, static.TotalMoves)
				}
				if dynamic.Trace != static.Trace {
					t.Errorf("trace not byte-identical to the static engine's")
				}
				if dynamic.Epoch != 0 {
					t.Errorf("epoch = %d, want 0 (all events no-ops)", dynamic.Epoch)
				}
			})
		}
	}
}
