package agentring_test

import (
	"testing"
	"testing/quick"

	"agentring"
)

// TestPropertyAllAlgorithmsUniform is the facade-level property test of
// the paper's headline claim: every algorithm reaches uniform
// deployment from every (randomly drawn) initial configuration under
// every scheduler.
func TestPropertyAllAlgorithmsUniform(t *testing.T) {
	f := func(nRaw, kRaw, algRaw, schedRaw uint8, seed int64) bool {
		n := int(nRaw%46) + 2
		k := int(kRaw)%n + 1
		algs := []agentring.Algorithm{
			agentring.Native, agentring.NativeKnowN, agentring.LogSpace, agentring.Relaxed,
		}
		scheds := []agentring.SchedulerKind{
			agentring.RoundRobin, agentring.RandomSched, agentring.Synchronous, agentring.Adversarial,
		}
		alg := algs[int(algRaw)%len(algs)]
		sched := scheds[int(schedRaw)%len(scheds)]
		homes, err := agentring.RandomHomes(n, k, seed)
		if err != nil {
			return false
		}
		rep, err := agentring.Run(alg, agentring.Config{
			N: n, Homes: homes, Scheduler: sched, Seed: seed, AdversaryBound: 6,
		})
		if err != nil {
			t.Logf("n=%d k=%d alg=%s sched=%d seed=%d: %v", n, k, alg, sched, seed, err)
			return false
		}
		if !rep.Uniform {
			t.Logf("n=%d k=%d alg=%s sched=%d seed=%d: %s", n, k, alg, sched, seed, rep.Why)
			return false
		}
		// Per-agent sanity: everyone either halted (knowledge variants)
		// or suspended (relaxed).
		for _, a := range rep.Agents {
			if alg == agentring.Relaxed && !a.Suspended {
				return false
			}
			if alg != agentring.Relaxed && !a.Halted {
				return false
			}
		}
		// The final configuration's own symmetry degree is maximal when
		// n is a multiple of k: uniform gaps repeat k times.
		if n%k == 0 {
			deg, err := agentring.SymmetryDegree(n, rep.Positions)
			if err != nil || deg != k {
				t.Logf("n=%d k=%d: final degree %d, want %d", n, k, deg, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMovesWithinPaperBounds asserts the per-agent move bounds
// of Theorems 3, 4 and 6 on random instances.
func TestPropertyMovesWithinPaperBounds(t *testing.T) {
	f := func(nRaw, kRaw uint8, seed int64) bool {
		n := int(nRaw%46) + 2
		k := int(kRaw)%n + 1
		homes, err := agentring.RandomHomes(n, k, seed)
		if err != nil {
			return false
		}
		l, err := agentring.SymmetryDegree(n, homes)
		if err != nil {
			return false
		}
		type bound struct {
			alg agentring.Algorithm
			max int
		}
		checks := []bound{
			{agentring.Native, 3 * n},                    // 1 circuit + <=2n deployment
			{agentring.LogSpace, (ceilLog2(k) + 4) * n},  // log k sub-phases + deployment slack
			{agentring.Relaxed, 14*(n/l) + 2*(n/l) + 16}, // 12 n/l + target walk, small slack
		}
		for _, c := range checks {
			rep, err := agentring.Run(c.alg, agentring.Config{N: n, Homes: homes})
			if err != nil {
				return false
			}
			if rep.MaxMoves > c.max {
				t.Logf("n=%d k=%d l=%d %s: max moves %d > bound %d", n, k, l, c.alg, rep.MaxMoves, c.max)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func ceilLog2(k int) int {
	bits := 0
	for v := 1; v < k; v <<= 1 {
		bits++
	}
	return bits
}
