package agentring_test

import (
	"reflect"
	"testing"

	"agentring"
	"agentring/internal/embed"
)

// pruferDecode turns a Prüfer sequence over nodes 0..m-1 into the edge
// list of the labeled tree it encodes (m >= 2; the sequence has length
// m-2).
func pruferDecode(m int, seq []int) [][2]int {
	degree := make([]int, m)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range seq {
		degree[v]++
	}
	edges := make([][2]int, 0, m-1)
	for _, v := range seq {
		for leaf := 0; leaf < m; leaf++ {
			if degree[leaf] == 1 {
				edges = append(edges, [2]int{leaf, v})
				degree[leaf]--
				degree[v]--
				break
			}
		}
	}
	u, w := -1, -1
	for v := 0; v < m; v++ {
		if degree[v] == 1 {
			if u == -1 {
				u = v
			} else {
				w = v
			}
		}
	}
	return append(edges, [2]int{u, w})
}

// forEachTree enumerates every labeled tree on m nodes via Prüfer
// sequences (m^(m-2) of them) and calls fn with its edge list.
func forEachTree(m int, fn func(edges [][2]int)) {
	if m == 2 {
		fn([][2]int{{0, 1}})
		return
	}
	seq := make([]int, m-2)
	var rec func(i int)
	rec = func(i int) {
		if i == len(seq) {
			fn(pruferDecode(m, seq))
			return
		}
		for v := 0; v < m; v++ {
			seq[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

// TestRunOnTreeCrossValidatesEulerPath cross-validates the two tree
// deployment paths on *every* tree with at most 6 nodes (1 + 3 + 16 +
// 125 + 1296 labeled trees): the historical Euler-tour path (embed the
// tree by hand and run the algorithm on an explicit unidirectional ring
// of 2(m-1) nodes) against the topology path RunOnTree now takes
// (NewTreeTopology through the engine's substrate layer). Positions,
// step counts, move totals, and uniformity must agree exactly.
func TestRunOnTreeCrossValidatesEulerPath(t *testing.T) {
	if testing.Short() {
		t.Skip("enumerates 1441 trees")
	}
	trees := 0
	for m := 2; m <= 6; m++ {
		forEachTree(m, func(edges [][2]int) {
			trees++
			// Two agents at the extreme labels, plus a mid node when the
			// tree is big enough for three.
			agents := []int{0, m - 1}
			if m >= 5 {
				agents = []int{0, m / 2, m - 1}
			}

			// Path 1 (historical): hand-built Euler embedding, explicit
			// unidirectional ring.
			et, err := embed.NewTree(m, edges)
			if err != nil {
				t.Fatalf("tree %v: %v", edges, err)
			}
			emb, err := embed.NewEmbedding(et, 0)
			if err != nil {
				t.Fatalf("tree %v: %v", edges, err)
			}
			virtualHomes, err := emb.VirtualHomes(agents)
			if err != nil {
				t.Fatalf("tree %v: %v", edges, err)
			}
			manual, err := agentring.Run(agentring.Native, agentring.Config{
				N: emb.RingSize(), Homes: virtualHomes,
			})
			if err != nil {
				t.Fatalf("tree %v manual euler run: %v", edges, err)
			}

			// Path 2 (topology layer): RunOnTree end-to-end.
			tree, err := agentring.NewTree(m, edges)
			if err != nil {
				t.Fatalf("tree %v: %v", edges, err)
			}
			rep, err := agentring.RunOnTree(agentring.Native, tree, 0, agents, agentring.Config{})
			if err != nil {
				t.Fatalf("tree %v RunOnTree: %v", edges, err)
			}

			if !reflect.DeepEqual(rep.Ring.Positions, manual.Positions) {
				t.Fatalf("tree %v: topology path positions %v, euler path %v",
					edges, rep.Ring.Positions, manual.Positions)
			}
			if rep.Ring.Steps != manual.Steps || rep.Ring.TotalMoves != manual.TotalMoves {
				t.Fatalf("tree %v: steps/moves %d/%d vs %d/%d",
					edges, rep.Ring.Steps, rep.Ring.TotalMoves, manual.Steps, manual.TotalMoves)
			}
			if rep.Ring.Uniform != manual.Uniform {
				t.Fatalf("tree %v: uniform %v vs %v", edges, rep.Ring.Uniform, manual.Uniform)
			}
			// The projection must agree with the embedding's own.
			wantTree, err := emb.TreePositions(manual.Positions)
			if err != nil {
				t.Fatalf("tree %v: %v", edges, err)
			}
			if !reflect.DeepEqual(rep.TreePositions, wantTree) {
				t.Fatalf("tree %v: tree positions %v, want %v", edges, rep.TreePositions, wantTree)
			}
		})
	}
	if trees != 1+3+16+125+1296 {
		t.Errorf("enumerated %d trees, want 1441", trees)
	}
}
