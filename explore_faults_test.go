package agentring_test

import (
	"context"
	"strings"
	"testing"

	"agentring"
	"agentring/internal/experiments"
)

// TestExploreNativeTransientFaultEveryPlacement is the dynamic-topology
// counterpart of the static exhaustive explorations: for every initial
// configuration of every ring with n <= 5 (every placement — faults
// break rotation symmetry, so no orbit deduplication), Algorithm 1 must
// deploy uniformly under EVERY asynchronous schedule while one link
// fails early and is repaired late. Completeness of each search makes
// this a mechanically checked proof on these instances.
func TestExploreNativeTransientFaultEveryPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive schedule-space sweep")
	}
	for n := 2; n <= 5; n++ {
		// The edge leaving node 0 fails before anything moves and is
		// repaired only after 3n actions — long enough that agents pile
		// up frozen behind the cut on many schedules.
		faults := []agentring.FaultEvent{
			{Step: 1, From: 0, Port: 0, Up: false},
			{Step: 3 * n, From: 0, Port: 0, Up: true},
		}
		for mask := 1; mask < 1<<n; mask++ {
			var homes []int
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					homes = append(homes, v)
				}
			}
			rep, err := agentring.Explore(context.Background(), agentring.Native, agentring.Config{
				N: n, Homes: homes, Faults: faults,
			}, agentring.ExploreOptions{})
			if err != nil {
				t.Fatalf("n=%d homes=%v: %v", n, homes, err)
			}
			if rep.Counterexample != nil {
				t.Fatalf("n=%d homes=%v: counterexample under eventually-repaired fault:\n%s",
					n, homes, rep.Counterexample.Trace)
			}
			if !rep.Complete {
				t.Fatalf("n=%d homes=%v: search incomplete (%d truncated)", n, homes, rep.Truncated)
			}
		}
	}
}

// TestExplorePermanentFaultFindsFrozenSchedule: the same search with
// the repair removed must produce a concrete, replayable counterexample
// — the schedule that drives an agent onto the dead link and leaves it
// frozen there forever.
func TestExplorePermanentFaultFindsFrozenSchedule(t *testing.T) {
	rep, err := agentring.Explore(context.Background(), agentring.Native, agentring.Config{
		N:     4,
		Homes: []int{0, 1},
		Faults: []agentring.FaultEvent{
			{Step: 1, From: 2, Port: 0, Up: false},
		},
	}, agentring.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cex := rep.Counterexample
	if cex == nil {
		t.Fatal("no counterexample with a permanently failed link")
	}
	if !strings.Contains(cex.Reason, "frozen in transit") {
		t.Fatalf("reason = %q, want frozen-in-transit", cex.Reason)
	}
	if len(cex.Prefix) == 0 || cex.Trace == "" {
		t.Fatalf("counterexample not replayable: %+v", cex)
	}
	if agentring.IsUniform(4, cex.Positions) {
		t.Fatalf("frozen terminal positions %v are uniform; expected a blocked deployment", cex.Positions)
	}
	if rep.Faults == "" {
		t.Error("report does not echo the fault schedule")
	}
}

// TestDynRingSweepTransientUniform: the DynRing workload family's
// eventually-repaired plans leave every grid row uniform — a bounded
// outage is indistinguishable from asynchrony the algorithms already
// tolerate. (The sweep-level counterpart of the exhaustive exploration
// above, on real Table 1 sizes.)
func TestDynRingSweepTransientUniform(t *testing.T) {
	for _, plan := range []string{experiments.FaultPlanTransient, experiments.FaultPlanChurn} {
		rows, err := experiments.DynRingSweep(agentring.Native, []int{32, 64}, []int{4, 8}, plan, 1)
		if err != nil {
			t.Fatalf("%s: %v", plan, err)
		}
		for _, r := range rows {
			if !r.Uniform {
				t.Errorf("%s: n=%d k=%d not uniform under eventually-repaired faults", plan, r.N, r.K)
			}
		}
	}
	// The permanent plan must break at least the configurations whose
	// deployment needs the dead link — and must never panic or error.
	rows, err := experiments.DynRingSweep(agentring.Native, []int{32}, []int{4}, experiments.FaultPlanPermanent, 1)
	if err != nil {
		t.Fatal(err)
	}
	broken := 0
	for _, r := range rows {
		if !r.Uniform {
			broken++
		}
	}
	if broken == 0 {
		t.Error("permanent link failure broke no configuration; expected blocked deployments")
	}
}
